package main

import (
	"numadag/internal/policy"
	"numadag/internal/rt"
)

// cyclicWindow assigns window-0 tasks round-robin over sockets (by task ID,
// so the assignment is deterministic) and follows LAS afterwards — "RGP with
// a partitioner that ignores the graph", the floor any real partitioner must
// beat. It registers as "RGP-cyclic" below, so the partitioner sweep refers
// to it by name like any built-in; every run of it goes through the audited
// core.Run path.
type cyclicWindow struct{}

// Name implements rt.Policy.
func (cyclicWindow) Name() string { return "RGP(cyclic)" }

// PickSocket implements rt.Policy.
func (cyclicWindow) PickSocket(r *rt.Runtime, t *rt.Task) int {
	if t.Window == 0 {
		return int(t.ID) % r.Machine().Sockets()
	}
	return policy.LAS{}.PickSocket(r, t)
}

func init() {
	policy.MustRegister("RGP-cyclic", func(s policy.Spec) (rt.Policy, error) {
		if err := s.Only(); err != nil {
			return nil, err
		}
		return cyclicWindow{}, nil
	})
}
