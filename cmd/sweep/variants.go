package main

import (
	"fmt"

	"numadag/internal/partition"
	"numadag/internal/policy"
	"numadag/internal/rt"
	"numadag/internal/sim"
)

func newEngine() *sim.Engine { return sim.NewEngine() }

// rgpVariant builds an RGP+LAS policy with an ablated partitioner:
//
//	full          the default multilevel pipeline
//	random-match  random matching instead of heavy-edge
//	no-refine     FM refinement disabled
//	cyclic        no partitioner at all: window tasks dealt round-robin
func rgpVariant(variant string, sockets int) (rt.Policy, error) {
	switch variant {
	case "full":
		return policy.NewRGPLAS(), nil
	case "random-match":
		p := policy.NewRGPLAS()
		p.Opt = partition.DefaultOptions(sockets)
		p.Opt.Matching = partition.RandomMatching
		return p, nil
	case "no-refine":
		p := policy.NewRGPLAS()
		p.Opt = partition.DefaultOptions(sockets)
		p.Opt.NoRefine = true
		return p, nil
	case "cyclic":
		return cyclicWindow{sockets: sockets}, nil
	default:
		return nil, fmt.Errorf("unknown partitioner variant %q", variant)
	}
}

// cyclicWindow assigns window-0 tasks round-robin over sockets (by task ID,
// so the assignment is deterministic) and follows LAS afterwards — "RGP with
// a partitioner that ignores the graph", the floor any real partitioner must
// beat.
type cyclicWindow struct {
	sockets int
}

// Name implements rt.Policy.
func (cyclicWindow) Name() string { return "RGP(cyclic)" }

// PickSocket implements rt.Policy.
func (c cyclicWindow) PickSocket(r *rt.Runtime, t *rt.Task) int {
	if t.Window == 0 {
		return int(t.ID) % c.sockets
	}
	return policy.LAS{}.PickSocket(r, t)
}
