// Command sweep runs the ablation experiments documented in DESIGN.md:
//
//	-exp window      (A1) window-size sensitivity of RGP+LAS
//	-exp partitioner (A2) partitioner quality: full multilevel vs ablated
//	-exp sockets     (A3) socket-count scaling (2/4/8 sockets)
//	-exp propagation (A4) RGP propagation: RGP+LAS vs pure RGP vs LAS
//
// Each experiment is a declaration over core.Experiment: one grid of
// (app x policy-spec x machine x variant x seed) cells, every cell run
// through the audited core.Run path, aggregated by a TableSink. The
// partitioner ablations are policy registry specs ("RGP+LAS?matching=random",
// "RGP+LAS?refine=off") plus the "RGP-cyclic" policy this command registers
// in variants.go; -jsonl/-csv stream every cell result as it completes.
//
// Sweeps shard, checkpoint and resume. A shard runs a deterministic slice
// of the grid into a journal file; merging the journals reproduces the
// unsharded outputs byte for byte:
//
//	sweep -exp partitioner -shard 0/3 -out run/   # one shard per host/CPU
//	sweep -exp partitioner -shard 1/3 -out run/ -resume   # re-run a crashed shard
//	sweep -exp partitioner -merge run/ -jsonl cells.jsonl # combine, no simulation
//
// -resume (with or without -shard) skips cells already journaled under
// -out and replays them, so an interrupted sweep continues where it
// stopped; -maxcells N stops resumably after N fresh cells. For fleets
// without a shared filesystem, one process coordinates and any number
// join:
//
//	sweep -exp sockets -serve :9119 -shards 8 -out run/
//	sweep -exp sockets -join http://coord:9119   # on each worker host
//
// Workers claim shards over HTTP, heartbeat while computing, and upload
// wire streams; a worker that dies mid-shard loses its lease and the shard
// is reassigned. Every mode of every command validates that journals,
// shards and payloads come from the same grid (experiment name + a
// fingerprint of the canonical cell enumeration).
//
// Usage:
//
//	sweep -exp window -scale small
//	sweep -exp sockets -apps jacobi,nstream
//	sweep -exp window -apps "random-layered?layers=24&width=96"
//	sweep -exp partitioner -seeds 3 -jsonl cells.jsonl
//
// -apps takes workload registry specs (dagen -list), and every experiment
// shares TDG construction across its policy/variant/seed cells through the
// experiment's snapshot cache.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"numadag/internal/apps"
	"numadag/internal/cliutil"
	"numadag/internal/core"
	"numadag/internal/machine"
	"numadag/internal/rt"
	"numadag/internal/shard"
)

func main() {
	var (
		exp      = flag.String("exp", "window", "experiment: window, partitioner, sockets, propagation")
		scale    = cliutil.ScaleFlag(flag.CommandLine, "small")
		appsF    = cliutil.AppsFlag(flag.CommandLine, "comma-separated workload specs (default depends on experiment)")
		seeds    = cliutil.SeedsFlag(flag.CommandLine, 2)
		outputs  = cliutil.BindOutputs(flag.CommandLine, true)
		shardSet = cliutil.BindShard(flag.CommandLine)
	)
	flag.Parse()

	sc, err := scale()
	if err != nil {
		fatal(err)
	}
	e, table, err := declare(*exp, sc, appsF(), *seeds)
	if err != nil {
		fatal(err)
	}
	mode, err := shardSet.Mode()
	if err != nil {
		fatal(err)
	}
	var sinks []core.Sink
	if mode.FullStream() {
		sinks = append(sinks, table)
		extra, err := outputs.Sinks()
		if err != nil {
			fatal(err)
		}
		sinks = append(sinks, extra...)
	} else if outputs.Any() {
		fmt.Fprintln(os.Stderr, "sweep: note: -jsonl/-csv apply to full-stream modes; shard journals land in -out (combine with -merge)")
	}
	err = cliutil.Drive(context.Background(), e, mode, shardSet, sinks...)
	if cerr := outputs.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if errors.Is(err, shard.ErrInterrupted) {
		fmt.Fprintf(os.Stderr, "sweep: interrupted after -maxcells=%d fresh cells; continue with -resume\n", shardSet.MaxCells)
		return
	}
	if err != nil {
		fatal(err)
	}
	if mode.FullStream() {
		if err := table.Table().Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// declare builds the experiment grid and its table aggregation for one
// ablation.
func declare(exp string, sc apps.Scale, appList []string, seeds int) (*core.Experiment, *core.TableSink, error) {
	switch exp {
	case "window":
		return windowSweep(sc, appList, seeds)
	case "partitioner":
		return partitionerSweep(sc, appList, seeds)
	case "sockets":
		return socketSweep(sc, appList, seeds)
	case "propagation":
		return propagationSweep(sc, appList, seeds)
	default:
		return nil, nil, fmt.Errorf("unknown experiment %q", exp)
	}
}

// windowSweep (A1): RGP+LAS makespan, normalized to the best, as the window
// size grows from 64 to 8192.
func windowSweep(sc apps.Scale, appList []string, seeds int) (*core.Experiment, *core.TableSink, error) {
	if appList == nil {
		appList = []string{"jacobi", "qr"}
	}
	windows := []int{64, 256, 1024, 2048, 8192}
	variants := make([]core.Variant, len(windows))
	for i, w := range windows {
		w := w
		variants[i] = core.Variant{
			Name:   fmt.Sprintf("w=%d", w),
			Mutate: func(o *rt.Options) { o.WindowSize = w },
		}
	}
	e := &core.Experiment{
		Name:     "A1-window",
		Apps:     appList,
		Policies: []string{"RGP+LAS"},
		Scale:    sc,
		Variants: variants,
		Seeds:    seeds,
	}
	table := core.NewTableSink(core.TableOptions{
		Title: "A1: RGP+LAS makespan vs window size (normalized to best)",
		Col:   func(c core.Cell) string { return c.Variant },
		Norm:  core.NormBest,
	})
	return e, table, nil
}

// partitionerSweep (A2): RGP+LAS makespan under partitioner ablations,
// normalized to the full multilevel pipeline. The ablations are registry
// specs; "cyclic" is the RGP-cyclic policy registered in variants.go.
func partitionerSweep(sc apps.Scale, appList []string, seeds int) (*core.Experiment, *core.TableSink, error) {
	if appList == nil {
		appList = apps.Names()
	}
	specs := []string{"RGP+LAS", "RGP+LAS?matching=random", "RGP+LAS?refine=off", "RGP-cyclic"}
	labels := map[string]string{
		"RGP+LAS":                 "full",
		"RGP+LAS?matching=random": "random-match",
		"RGP+LAS?refine=off":      "no-refine",
		"RGP-cyclic":              "cyclic",
	}
	e := &core.Experiment{
		Name:     "A2-partitioner",
		Apps:     appList,
		Policies: specs,
		Scale:    sc,
		Seeds:    seeds,
	}
	table := core.NewTableSink(core.TableOptions{
		Title:          "A2: RGP+LAS makespan by partitioner variant (normalized to full)",
		Col:            func(c core.Cell) string { return labels[c.Policy] },
		Columns:        []string{"full", "random-match", "no-refine", "cyclic"},
		Norm:           core.NormRatio,
		BaselineColumn: "full",
	})
	return e, table, nil
}

// socketSweep (A3): LAS-relative speedup of RGP+LAS on 2-, 4- and 8-socket
// machines. The LAS runs feed each machine column's baseline.
func socketSweep(sc apps.Scale, appList []string, seeds int) (*core.Experiment, *core.TableSink, error) {
	if appList == nil {
		appList = apps.Names()
	}
	machines := []machine.Config{machine.TwoSocketXeon(), machine.FourSocket(), machine.BullionS16()}
	label := make(map[string]string, len(machines))
	cols := make([]string, len(machines))
	for i, m := range machines {
		cols[i] = fmt.Sprintf("%ds", m.Sockets)
		label[m.Name] = cols[i]
	}
	e := &core.Experiment{
		Name:     "A3-sockets",
		Apps:     appList,
		Policies: []string{"LAS", "RGP+LAS"},
		Scale:    sc,
		Machines: machines,
		Seeds:    seeds,
	}
	table := core.NewTableSink(core.TableOptions{
		Title:    "A3: RGP+LAS speedup over LAS by socket count",
		Col:      func(c core.Cell) string { return label[c.Machine] },
		Columns:  cols,
		Norm:     core.NormSpeedup,
		Baseline: func(c core.Cell) bool { return c.Policy == "LAS" },
	})
	return e, table, nil
}

// propagationSweep (A4): speedup over LAS of the two RGP propagation modes.
// The window is forced small enough that every app spans several windows —
// with a single window the two modes coincide by construction.
func propagationSweep(sc apps.Scale, appList []string, seeds int) (*core.Experiment, *core.TableSink, error) {
	if appList == nil {
		appList = apps.Names()
	}
	const window = 256
	opts := rt.DefaultOptions()
	opts.WindowSize = window
	e := &core.Experiment{
		Name:     "A4-propagation",
		Apps:     appList,
		Policies: []string{"LAS", "RGP+LAS", "RGP"},
		Scale:    sc,
		Runtime:  opts,
		Seeds:    seeds,
	}
	table := core.NewTableSink(core.TableOptions{
		Title:    fmt.Sprintf("A4: speedup over LAS by propagation mode (window=%d)", window),
		Columns:  []string{"RGP+LAS", "RGP"},
		Norm:     core.NormSpeedup,
		Baseline: func(c core.Cell) bool { return c.Policy == "LAS" },
	})
	return e, table, nil
}

func fatal(err error) {
	cliutil.Fatal("sweep", err)
}
