// Command sweep runs the ablation experiments documented in DESIGN.md:
//
//	-exp window      (A1) window-size sensitivity of RGP+LAS
//	-exp partitioner (A2) partitioner quality: full multilevel vs ablated
//	-exp sockets     (A3) socket-count scaling (2/4/8 sockets)
//	-exp propagation (A4) RGP propagation: RGP+LAS vs pure RGP vs LAS
//
// Usage:
//
//	sweep -exp window -scale small
//	sweep -exp sockets -apps jacobi,nstream
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"numadag/internal/apps"
	"numadag/internal/core"
	"numadag/internal/machine"
	"numadag/internal/metrics"
	"numadag/internal/rt"
)

func main() {
	var (
		exp      = flag.String("exp", "window", "experiment: window, partitioner, sockets, propagation")
		scale    = flag.String("scale", "small", "problem scale")
		appsFlag = flag.String("apps", "", "comma-separated app subset (default depends on experiment)")
		seeds    = flag.Int("seeds", 2, "seeds averaged per cell")
	)
	flag.Parse()

	sc, err := apps.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	var appList []string
	if *appsFlag != "" {
		appList = strings.Split(*appsFlag, ",")
	}
	switch *exp {
	case "window":
		err = windowSweep(sc, appList, *seeds)
	case "partitioner":
		err = partitionerSweep(sc, appList, *seeds)
	case "sockets":
		err = socketSweep(sc, appList, *seeds)
	case "propagation":
		err = propagationSweep(sc, appList, *seeds)
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		fatal(err)
	}
}

// averaged runs a config over seeds and returns the mean makespan (ns).
func averaged(cfg core.Config, seeds int) (float64, error) {
	sum := 0.0
	for s := 0; s < seeds; s++ {
		cfg.Runtime.Seed = 1 + uint64(1000*s)
		res, err := core.Run(cfg)
		if err != nil {
			return 0, err
		}
		sum += float64(res.Stats.Makespan)
	}
	return sum / float64(seeds), nil
}

// windowSweep (A1): RGP+LAS makespan, normalized to the best, as the window
// size grows from 64 to 8192.
func windowSweep(sc apps.Scale, appList []string, seeds int) error {
	if appList == nil {
		appList = []string{"jacobi", "qr"}
	}
	windows := []int{64, 256, 1024, 2048, 8192}
	cols := make([]string, len(windows))
	for i, w := range windows {
		cols[i] = fmt.Sprintf("w=%d", w)
	}
	tb := metrics.NewTable("A1: RGP+LAS makespan vs window size (normalized to best)", cols...)
	for _, app := range appList {
		vals := make([]float64, len(windows))
		best := 0.0
		for i, w := range windows {
			cfg := core.DefaultConfig(app, "RGP+LAS", sc)
			cfg.Runtime.WindowSize = w
			v, err := averaged(cfg, seeds)
			if err != nil {
				return err
			}
			vals[i] = v
			if best == 0 || v < best {
				best = v
			}
		}
		for i := range windows {
			tb.Set(app, cols[i], vals[i]/best)
		}
	}
	return tb.Write(os.Stdout)
}

// partitionerSweep (A2): edge cut of the window-0 TDG under partitioner
// ablations, normalized to the full multilevel pipeline.
func partitionerSweep(sc apps.Scale, appList []string, seeds int) error {
	if appList == nil {
		appList = apps.Names()
	}
	variants := []string{"full", "random-match", "no-refine", "cyclic"}
	tb := metrics.NewTable("A2: RGP+LAS makespan by partitioner variant (normalized to full)", variants...)
	for _, app := range appList {
		base := 0.0
		for _, variant := range variants {
			cfg := core.DefaultConfig(app, "RGP+LAS", sc)
			cfg.Policy = "RGP+LAS"
			v, err := averagedVariant(cfg, variant, seeds)
			if err != nil {
				return err
			}
			if variant == "full" {
				base = v
			}
			tb.Set(app, variant, v/base)
		}
	}
	return tb.Write(os.Stdout)
}

// averagedVariant runs RGP+LAS with an ablated partitioner.
func averagedVariant(cfg core.Config, variant string, seeds int) (float64, error) {
	sum := 0.0
	for s := 0; s < seeds; s++ {
		pol, err := rgpVariant(variant, cfg.Machine.Sockets)
		if err != nil {
			return 0, err
		}
		app, err := apps.ByName(cfg.App, cfg.Scale)
		if err != nil {
			return 0, err
		}
		opts := cfg.Runtime
		opts.Seed = 1 + uint64(1000*s)
		r := rt.NewRuntime(machineFor(cfg), pol, opts)
		app.Build(r)
		sum += float64(r.Run().Makespan)
	}
	return sum / float64(seeds), nil
}

func machineFor(cfg core.Config) *machine.Machine {
	return machine.New(cfg.Machine, newEngine())
}

// socketSweep (A3): LAS-relative speedup of RGP+LAS on 2-, 4- and 8-socket
// machines.
func socketSweep(sc apps.Scale, appList []string, seeds int) error {
	if appList == nil {
		appList = apps.Names()
	}
	machines := []machine.Config{machine.TwoSocketXeon(), machine.FourSocket(), machine.BullionS16()}
	cols := make([]string, len(machines))
	for i, m := range machines {
		cols[i] = fmt.Sprintf("%ds", m.Sockets)
	}
	tb := metrics.NewTable("A3: RGP+LAS speedup over LAS by socket count", cols...)
	for _, app := range appList {
		for i, m := range machines {
			base := core.DefaultConfig(app, "LAS", sc)
			base.Machine = m
			las, err := averaged(base, seeds)
			if err != nil {
				return err
			}
			cfg := core.DefaultConfig(app, "RGP+LAS", sc)
			cfg.Machine = m
			rgp, err := averaged(cfg, seeds)
			if err != nil {
				return err
			}
			tb.Set(app, cols[i], las/rgp)
		}
	}
	return tb.Write(os.Stdout)
}

// propagationSweep (A4): speedup over LAS of the two RGP propagation modes.
// The window is forced small enough that every app spans several windows —
// with a single window the two modes coincide by construction.
func propagationSweep(sc apps.Scale, appList []string, seeds int) error {
	if appList == nil {
		appList = apps.Names()
	}
	const window = 256
	cols := []string{"RGP+LAS", "RGP"}
	tb := metrics.NewTable(
		fmt.Sprintf("A4: speedup over LAS by propagation mode (window=%d)", window), cols...)
	for _, app := range appList {
		lasCfg := core.DefaultConfig(app, "LAS", sc)
		lasCfg.Runtime.WindowSize = window
		las, err := averaged(lasCfg, seeds)
		if err != nil {
			return err
		}
		for _, pol := range cols {
			cfg := core.DefaultConfig(app, pol, sc)
			cfg.Runtime.WindowSize = window
			v, err := averaged(cfg, seeds)
			if err != nil {
				return err
			}
			tb.Set(app, pol, las/v)
		}
	}
	return tb.Write(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
