// Command dagen is the workload generator's front door: it lists and
// describes the registered task-graph generators, resolves workload specs,
// prints graph statistics, exports generated DAGs as JSON (re-importable via
// "file?path=...") or Graphviz DOT, and can run a generated workload
// end-to-end through the audited partition -> schedule -> audit pipeline.
//
// Usage:
//
//	dagen -list                                      # registered workloads
//	dagen -describe random-layered                   # one generator's doc
//	dagen -spec "random-layered?layers=24&width=96"  # graph statistics
//	dagen -spec "forkjoin?depth=6&fanout=3" -json t.json -dot t.dot
//	dagen -spec "file?path=testdata/dags/diamond.json" -run -policy RGP+LAS
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"numadag/internal/cliutil"
	"numadag/internal/core"
	"numadag/internal/rt"
	"numadag/internal/workload"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list registered workloads and exit")
		describe = flag.String("describe", "", "print one workload's documentation and exit")
		spec     = flag.String("spec", "", "workload spec to generate, e.g. \"forkjoin?depth=6&fanout=3\"")
		scale    = cliutil.ScaleFlag(flag.CommandLine, "small")
		machF    = cliutil.MachineFlag(flag.CommandLine, "bullion")
		jsonOut  = flag.String("json", "", "export the generated DAG as JSON to this file")
		dotOut   = flag.String("dot", "", "export the generated DAG as Graphviz DOT to this file")
		run      = flag.Bool("run", false, "run the workload end-to-end (schedule + audit) and print statistics")
		polName  = flag.String("policy", "RGP+LAS", "policy registry spec for -run")
		seed     = flag.Uint64("seed", 1, "runtime seed for -run")
	)
	flag.Parse()

	switch {
	case *list:
		for _, n := range workload.Names() {
			doc, _ := workload.Doc(n)
			fmt.Printf("%-16s %s\n", n, doc)
		}
		return
	case *describe != "":
		doc, err := workload.Doc(*describe)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %s\n", *describe, doc)
		fmt.Println("reserved parameters: scale=tiny|small|paper, seed=N (generator seed)")
		return
	case *spec == "":
		fatal(fmt.Errorf("need -spec, -list or -describe (see -h)"))
	}

	sc, err := scale()
	if err != nil {
		fatal(err)
	}
	mach, err := machF()
	if err != nil {
		fatal(err)
	}
	w, err := workload.New(*spec, sc)
	if err != nil {
		fatal(err)
	}
	r, err := w.Instantiate(mach)
	if err != nil {
		fatal(err)
	}
	dag := r.Graph()
	fmt.Printf("workload %s (scale %s, seed %d)\n", w.Spec, w.Scale, w.Seed)
	fmt.Printf("graph: %d nodes, %d edges, total node weight %d, total edge weight %d\n",
		dag.Len(), dag.Edges(), dag.TotalNodeWeight(), dag.TotalEdgeWeight())
	if prof, err := dag.ComputeProfile(); err == nil {
		fmt.Printf("profile: %s\n", prof)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(dag, "", " ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("JSON written to %s (re-import with -spec \"file?path=%s\")\n", *jsonOut, *jsonOut)
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatal(err)
		}
		if err := dag.DOT(f, w.Name, nil); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("DOT written to %s\n", *dotOut)
	}
	if *run {
		cfg := core.Config{
			App:     *spec,
			Scale:   sc,
			Policy:  *polName,
			Machine: mach,
			Runtime: rt.DefaultOptions(),
		}
		cfg.Runtime.Seed = *seed
		res, err := core.Run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("run: policy=%s machine=%s seed=%d\n", *polName, mach.Name, *seed)
		fmt.Printf("  %s\n", res.Stats.Summary())
		fmt.Printf("  socket task counts: %v\n", res.Stats.SocketTasks)
	}
}

func fatal(err error) {
	cliutil.Fatal("dagen", err)
}
