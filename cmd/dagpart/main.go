// Command dagpart is a stand-alone interface to the multilevel graph
// partitioner (the SCOTCH substitute): it builds a workload's task
// dependency graph (or reads one from JSON), partitions or maps it, prints
// cut/balance statistics, and can export a colored DOT rendering.
//
// -app accepts any workload registry spec (see dagen -list), so synthetic
// generators partition exactly like the paper benchmarks.
//
// Usage:
//
//	dagpart -app qr -scale tiny -parts 8
//	dagpart -app "random-layered?layers=24&width=96" -parts 8
//	dagpart -in graph.json -parts 4 -imbalance 0.03
//	dagpart -app jacobi -map -dot jacobi.dot      # map onto the bullion
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"numadag/internal/apps"
	"numadag/internal/graph"
	"numadag/internal/machine"
	"numadag/internal/partition"
	"numadag/internal/sim"
	"numadag/internal/workload"
)

func main() {
	var (
		appName   = flag.String("app", "", "build the TDG of this workload spec (see dagen -list)")
		scale     = flag.String("scale", "tiny", "problem scale for -app")
		inFile    = flag.String("in", "", "read a DAG from this JSON file instead of -app")
		parts     = flag.Int("parts", 8, "number of parts")
		imbalance = flag.Float64("imbalance", 0.05, "tolerated imbalance")
		seed      = flag.Uint64("seed", 1, "partitioner seed")
		useMap    = flag.Bool("map", false, "map onto the bullion architecture instead of plain k-way")
		noRefine  = flag.Bool("norefine", false, "disable FM refinement")
		dotOut    = flag.String("dot", "", "write colored DOT to this file")
		jsonOut   = flag.String("json", "", "write the DAG as JSON to this file")
	)
	flag.Parse()

	dag, err := loadDAG(*appName, *scale, *inFile)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges, total node weight %d, total edge weight %d\n",
		dag.Len(), dag.Edges(), dag.TotalNodeWeight(), dag.TotalEdgeWeight())
	if prof, err := dag.ComputeProfile(); err == nil {
		fmt.Printf("profile: %s\n", prof)
	}

	pg := partition.FromDAG(dag)
	opt := partition.DefaultOptions(*parts)
	opt.Imbalance = *imbalance
	opt.Seed = *seed
	opt.NoRefine = *noRefine

	var (
		part []int32
		st   partition.Stats
	)
	if *useMap {
		arch := archFrom(machine.BullionS16())
		part, st, err = partition.MapOnto(pg, arch, opt)
		if err == nil {
			fmt.Printf("mapping onto bullion: comm cost %d\n", partition.CommCost(pg, part, arch.Dist))
		}
	} else {
		part, st, err = partition.Partition(pg, opt)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("parts=%d cut=%d imbalance=%.4f\n", *parts, st.EdgeCut, st.Imbalance)
	weights := partition.PartWeights(pg, part, *parts)
	fmt.Printf("part weights: %v\n", weights)

	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			fatal(err)
		}
		if err := dag.DOT(f, "tdg", part); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("DOT written to %s\n", *dotOut)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(dag, "", " ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("JSON written to %s\n", *jsonOut)
	}
}

// loadDAG builds from a benchmark or reads from a file.
func loadDAG(appName, scale, inFile string) (*graph.DAG, error) {
	switch {
	case inFile != "":
		data, err := os.ReadFile(inFile)
		if err != nil {
			return nil, err
		}
		var d graph.DAG
		if err := json.Unmarshal(data, &d); err != nil {
			return nil, err
		}
		return &d, nil
	case appName != "":
		sc, err := apps.ParseScale(scale)
		if err != nil {
			return nil, err
		}
		w, err := workload.New(appName, sc)
		if err != nil {
			return nil, err
		}
		r, err := w.Instantiate(machine.BullionS16())
		if err != nil {
			return nil, err
		}
		return r.Graph(), nil
	default:
		return nil, fmt.Errorf("need -app or -in")
	}
}

func archFrom(cfg machine.Config) *partition.Arch {
	m := machine.New(cfg, sim.NewEngine())
	n := cfg.Sockets
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
		for j := range d[i] {
			d[i][j] = m.Hops(i, j)
		}
	}
	return &partition.Arch{Dist: d}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dagpart:", err)
	os.Exit(1)
}
