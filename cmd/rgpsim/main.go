// Command rgpsim runs one benchmark under one scheduling policy on the
// simulated NUMA machine and reports the run's statistics, optionally
// dumping an execution trace. The -policy flag accepts any policy registry
// spec, including parameterized ones ("RGP+LAS?matching=random"); every run
// goes through the audited core.Run path.
//
// Usage:
//
//	rgpsim -app jacobi -policy RGP+LAS -scale paper
//	rgpsim -app nstream -policy LAS -machine 2socket -gantt
//	rgpsim -app qr -policy EP -trace qr.json   # chrome://tracing format
//	rgpsim -list                               # registered policies
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"numadag/internal/apps"
	"numadag/internal/core"
	"numadag/internal/machine"
	"numadag/internal/policy"
	"numadag/internal/rt"
	"numadag/internal/trace"
)

func main() {
	var (
		appName  = flag.String("app", "jacobi", "benchmark: "+strings.Join(apps.Names(), ", "))
		polName  = flag.String("policy", "RGP+LAS", "policy registry spec (see -list), e.g. LAS or RGP+LAS?refine=off")
		scale    = flag.String("scale", "small", "problem scale: tiny, small, paper")
		machName = flag.String("machine", "bullion", "machine: bullion, 2socket, 4socket, uniform")
		window   = flag.Int("window", rt.DefaultOptions().WindowSize, "window size limit (tasks)")
		seed     = flag.Uint64("seed", 1, "random seed")
		noSteal  = flag.Bool("nosteal", false, "disable cross-socket work stealing")
		traceOut = flag.String("trace", "", "write Chrome trace JSON to this file")
		gantt    = flag.Bool("gantt", false, "print a per-core text Gantt chart")
		list     = flag.Bool("list", false, "list registered policies and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(policy.Names(), "\n"))
		return
	}
	sc, err := apps.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	mach, err := machineByName(*machName)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		App:     *appName,
		Scale:   sc,
		Policy:  *polName,
		Machine: mach,
		Runtime: rt.DefaultOptions(),
	}
	cfg.Runtime.WindowSize = *window
	cfg.Runtime.Seed = *seed
	cfg.Runtime.Steal = !*noSteal

	var rec *trace.Recorder
	if *traceOut != "" || *gantt {
		rec = trace.NewRecorder()
		cfg.Runtime.Observer = rec
	}

	res, err := core.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("app=%s policy=%s scale=%s machine=%s window=%d seed=%d\n",
		*appName, *polName, sc, mach.Name, *window, *seed)
	fmt.Printf("  %s\n", res.Stats.Summary())
	fmt.Printf("  socket task counts: %v\n", res.Stats.SocketTasks)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("  trace written to %s (open in chrome://tracing)\n", *traceOut)
	}
	if *gantt {
		if err := rec.WriteGantt(os.Stdout, mach.TotalCores(), 100); err != nil {
			fatal(err)
		}
	}
}

func machineByName(name string) (machine.Config, error) {
	switch name {
	case "bullion":
		return machine.BullionS16(), nil
	case "2socket":
		return machine.TwoSocketXeon(), nil
	case "4socket":
		return machine.FourSocket(), nil
	case "uniform":
		return machine.Uniform(8, 4), nil
	default:
		return machine.Config{}, fmt.Errorf("unknown machine %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rgpsim:", err)
	os.Exit(1)
}
