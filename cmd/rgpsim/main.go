// Command rgpsim runs one workload under one scheduling policy on the
// simulated NUMA machine and reports the run's statistics, optionally
// dumping an execution trace. Both axes are registry specs: -policy accepts
// any policy spec ("RGP+LAS?matching=random") and -app accepts any workload
// spec — a paper benchmark, a parameterized synthetic generator or an
// imported DAG; every run goes through the audited core.Run path.
//
// Usage:
//
//	rgpsim -app jacobi -policy RGP+LAS -scale paper
//	rgpsim -app "random-layered?layers=24&width=96" -policy RGP+LAS
//	rgpsim -app "file?path=testdata/dags/diamond.json" -policy LAS
//	rgpsim -app nstream -policy LAS -machine 2socket -gantt
//	rgpsim -app qr -policy EP -trace qr.json   # chrome://tracing format
//	rgpsim -list                               # registered policies + workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"numadag/internal/apps"
	"numadag/internal/core"
	"numadag/internal/machine"
	"numadag/internal/policy"
	"numadag/internal/rt"
	"numadag/internal/trace"
	"numadag/internal/workload"
)

func main() {
	var (
		appName  = flag.String("app", "jacobi", "workload registry spec (see -list), e.g. jacobi or forkjoin?depth=6")
		polName  = flag.String("policy", "RGP+LAS", "policy registry spec (see -list), e.g. LAS or RGP+LAS?refine=off")
		scale    = flag.String("scale", "small", "problem scale: tiny, small, paper")
		machName = flag.String("machine", "bullion", "machine: bullion, 2socket, 4socket, uniform")
		window   = flag.Int("window", rt.DefaultOptions().WindowSize, "window size limit (tasks)")
		seed     = flag.Uint64("seed", 1, "random seed")
		noSteal  = flag.Bool("nosteal", false, "disable cross-socket work stealing")
		traceOut = flag.String("trace", "", "write Chrome trace JSON to this file")
		gantt    = flag.Bool("gantt", false, "print a per-core text Gantt chart")
		list     = flag.Bool("list", false, "list registered policies and workloads, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("policies:")
		fmt.Println("  " + strings.Join(policy.Names(), "\n  "))
		fmt.Println("workloads (dagen -list for docs):")
		fmt.Println("  " + strings.Join(workload.Names(), "\n  "))
		return
	}
	sc, err := apps.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	mach, err := machine.ByName(*machName)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		App:     *appName,
		Scale:   sc,
		Policy:  *polName,
		Machine: mach,
		Runtime: rt.DefaultOptions(),
	}
	cfg.Runtime.WindowSize = *window
	cfg.Runtime.Seed = *seed
	cfg.Runtime.Steal = !*noSteal

	var rec *trace.Recorder
	if *traceOut != "" || *gantt {
		rec = trace.NewRecorder()
		cfg.Runtime.Observer = rec
	}

	res, err := core.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("app=%s policy=%s scale=%s machine=%s window=%d seed=%d\n",
		*appName, *polName, sc, mach.Name, *window, *seed)
	fmt.Printf("  %s\n", res.Stats.Summary())
	fmt.Printf("  socket task counts: %v\n", res.Stats.SocketTasks)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("  trace written to %s (open in chrome://tracing)\n", *traceOut)
	}
	if *gantt {
		if err := rec.WriteGantt(os.Stdout, mach.TotalCores(), 100); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rgpsim:", err)
	os.Exit(1)
}
