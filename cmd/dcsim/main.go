// Command dcsim runs the simulator in online multi-tenant service mode: an
// open-loop arrival process submits DAG jobs from several tenants to a
// fleet of NUMA machines sharing one simulated clock, a dispatcher places
// each job, and the run reports tail-latency slowdowns against the IdealDC
// fluid model, per-tenant fairness and cluster utilization.
//
// Usage:
//
//	dcsim -machines 8 -jobs 500
//	dcsim -dispatcher idle -policy RGP+LAS -seed 7
//	dcsim -tenants "web:poisson:4000:noop?tasks=4,hpc:diurnal:500:forkjoin?depth=5" -jobs 1000
//	dcsim -machines 16 -machine bullion -jsonl jobs.jsonl
//	dcsim -trace run.json            # Chrome trace (load in Perfetto)
//	dcsim -http :8080                # live monitor: /status JSON, /trace
//
// The -tenants grammar is comma-separated tenant declarations of the form
//
//	name:process:rate:spec[|spec...]
//
// where process is poisson or diurnal and rate is jobs per simulated
// second. Omitting -tenants uses a four-tenant default mix whose total
// arrival rate is set by -rate. Workload specs are the same registry specs
// every other command accepts (see cmd/dagen -list).
//
// A fixed -seed makes the whole run — arrivals, dispatch, scheduling —
// bit-identical across repeats and across -procs values; -procs sets the
// engine's end-of-instant flush parallelism (independent machines'
// reallocation passes run concurrently under a deterministic id-ordered
// merge — see package sim's parallel flush determinism contract) and fans
// out the one-time task-graph prebuilds.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"numadag/internal/cliutil"
	"numadag/internal/cluster"
	"numadag/internal/rt"
	"numadag/internal/sim"
)

func main() {
	var (
		machines = flag.Int("machines", 8, "fleet size")
		machF    = cliutil.MachineFlag(flag.CommandLine, "2socket")
		policyF  = flag.String("policy", "LAS", "per-job scheduling policy spec")
		dispF    = flag.String("dispatcher", "kchoices?d=2", "dispatcher spec (kchoices?d=K, idle)")
		scale    = cliutil.ScaleFlag(flag.CommandLine, "tiny")
		jobs     = flag.Int("jobs", 500, "arrival stream length")
		seed     = flag.Uint64("seed", 1, "base seed (tenants, dispatch, per-job runtimes)")
		procs    = flag.Int("procs", 1, "simulation parallelism: engine flush workers and task-graph prebuild workers (never affects results)")
		rate     = flag.Float64("rate", 7000, "total arrival rate for the default tenant mix, jobs/s")
		tenantsF = flag.String("tenants", "", "tenant declarations: name:process:rate:spec|spec,...")
		outputs  = cliutil.BindOutputs(flag.CommandLine, true)
		audit    = flag.Bool("audit", false, "audit every job's schedule against TDG semantics")
		traceOut = cliutil.BindTrace(flag.CommandLine)
		httpF    = flag.String("http", "", "serve the live monitor on this address (e.g. :8080): /status JSON, /trace snapshot")
		lingerF  = flag.Duration("http-linger", 0, "with -http: keep serving the monitor this long after the run ends, so a scraper can read the final snapshot")
	)
	flag.Parse()

	sc, err := scale()
	if err != nil {
		fatal(err)
	}
	mc, err := machF()
	if err != nil {
		fatal(err)
	}
	tenants, err := parseTenants(*tenantsF, *rate)
	if err != nil {
		fatal(err)
	}

	cfg := cluster.Config{
		Machines:    *machines,
		Machine:     mc,
		Policy:      *policyF,
		Runtime:     rt.DefaultOptions(),
		Scale:       sc,
		Tenants:     tenants,
		Jobs:        *jobs,
		Seed:        *seed,
		Dispatcher:  *dispF,
		Procs:       *procs,
		Parallelism: *procs,
		Audit:       *audit,
	}
	// The monitor's /trace endpoint serves the tracer's snapshot, so -http
	// implies tracing even without a -trace output file.
	cfg.Trace = traceOut.Enable(*httpF != "")
	if *httpF != "" {
		mon := cluster.NewMonitor(cfg.Trace)
		cfg.Monitor = mon
		ln, err := net.Listen("tcp", *httpF)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dcsim: live monitor on http://%s (/status, /trace)\n", ln.Addr())
		go func() {
			// Serve returns ErrClosed on a clean listener close at exit;
			// anything else (port stolen, accept failure) must be surfaced,
			// not dropped — a dead monitor that looks alive is worse than
			// none.
			if err := http.Serve(ln, mon.Handler()); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "dcsim: monitor:", err)
			}
		}()
	}

	sinks, err := outputs.Sinks()
	if err != nil {
		fatal(err)
	}
	defer outputs.Close()

	res, err := cluster.Run(cfg, sinks...)
	if err != nil {
		fatal(err)
	}
	if err := traceOut.Write(); err != nil {
		fatal(err)
	}
	if err := res.Stats.SummaryTable().Write(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("\n%s\n", res.Stats.Summary())
	fmt.Printf("makespan %v, %d engine steps, %.0f bytes moved, completion hash %016x\n",
		res.Makespan, res.Steps, res.TotalBytes, res.CompletionHash())
	if *httpF != "" && *lingerF > 0 {
		// Without the linger the process exits the instant the run ends and
		// the monitor dies with the final snapshot unread.
		fmt.Fprintf(os.Stderr, "dcsim: run complete; monitor lingering %v\n", *lingerF)
		time.Sleep(*lingerF)
	}
}

// parseTenants decodes the -tenants grammar, or returns the default
// four-tenant mix (rates split 4:2:1 across interactive/batch/science plus
// a three-entry cron trace) at the given total rate.
func parseTenants(spec string, totalRate float64) ([]cluster.Tenant, error) {
	if spec == "" {
		if totalRate <= 0 {
			return nil, fmt.Errorf("-rate must be positive")
		}
		return []cluster.Tenant{
			{Name: "interactive", Specs: []string{"noop?tasks=4&flops=4096", "noop?tasks=1&flops=1024"},
				Process: "diurnal", Rate: totalRate * 4 / 7, Amplitude: 0.6, Period: 200 * sim.Millisecond},
			{Name: "batch", Specs: []string{"forkjoin?depth=2&fanout=2", "random-layered?layers=3&width=4"},
				Process: "poisson", Rate: totalRate * 2 / 7},
			{Name: "science", Specs: []string{"random-layered?layers=4&width=3&fan=2"},
				Process: "poisson", Rate: totalRate / 7},
			{Name: "cron", Specs: []string{"noop?tasks=0"},
				Process: "trace", Trace: []sim.Time{0, sim.Millisecond, 50 * sim.Millisecond}},
		}, nil
	}
	var tenants []cluster.Tenant
	for _, decl := range strings.Split(spec, ",") {
		parts := strings.SplitN(decl, ":", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("tenant %q: want name:process:rate:spec|spec", decl)
		}
		r, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("tenant %q: bad rate %q", parts[0], parts[2])
		}
		tenants = append(tenants, cluster.Tenant{
			Name:    parts[0],
			Process: parts[1],
			Rate:    r,
			Specs:   strings.Split(parts[3], "|"),
		})
	}
	return tenants, nil
}

func fatal(err error) {
	cliutil.Fatal("dcsim", err)
}
