// Command figure1 regenerates the paper's Figure 1: the speedup of DFIFO,
// RGP+LAS and EP over the LAS baseline for the eight benchmarks on the
// simulated Atos bullion S16 (8 sockets x 4 cores), plus the geometric mean.
//
// Each (workload, machine) task graph is built once per run and shared
// across the policy/seed cells via the experiment's TDG cache, so multi-seed
// sweeps pay generator cost once. -apps accepts workload registry specs, so
// the figure can be regenerated over synthetic or imported DAGs too.
//
// Usage:
//
//	figure1                      # paper scale, 3 seeds (a few minutes)
//	figure1 -scale small -seeds 2
//	figure1 -bars                # ASCII bar chart like the paper's figure
//	figure1 -jsonl cells.jsonl   # stream per-cell results while running
//	figure1 -trace cells.json    # Chrome trace of every grid cell (Perfetto)
//	figure1 -apps "jacobi,forkjoin?depth=8&fanout=3" -scale small
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"numadag/internal/apps"
	"numadag/internal/core"
	"numadag/internal/trace"
)

func main() {
	var (
		scale    = flag.String("scale", "paper", "problem scale: tiny, small, paper")
		seeds    = flag.Int("seeds", 3, "seeds averaged per cell")
		bars     = flag.Bool("bars", false, "render ASCII bars instead of a table")
		csvF     = flag.String("csv", "", "also write the table as CSV to this file")
		jsonlF   = flag.String("jsonl", "", "stream per-cell results as JSON lines to this file")
		wsize    = flag.Int("window", 0, "override window size (0 = default 2048)")
		appsFlag = flag.String("apps", "", "comma-separated workload specs (default: the eight paper benchmarks)")
		traceF   = flag.String("trace", "", "write a Chrome trace of every grid cell to this file (load in Perfetto)")
	)
	flag.Parse()

	sc, err := apps.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	opt := core.DefaultFigure1Options()
	opt.Scale = sc
	opt.Seeds = *seeds
	if *wsize > 0 {
		opt.Runtime.WindowSize = *wsize
	}
	if *appsFlag != "" {
		opt.Apps = strings.Split(*appsFlag, ",")
	}
	var tr *trace.Tracer
	if *traceF != "" {
		tr = trace.NewTracer()
		opt.Trace = tr
	}
	var extra []core.Sink
	if *jsonlF != "" {
		f, err := os.Create(*jsonlF)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		extra = append(extra, core.NewJSONLSink(f))
	}
	table, err := core.Figure1(opt, extra...)
	if err != nil {
		fatal(err)
	}
	if tr != nil {
		if err := tr.WriteFile(*traceF); err != nil {
			fatal(err)
		}
	}
	if *csvF != "" {
		f, err := os.Create(*csvF)
		if err != nil {
			fatal(err)
		}
		if err := table.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *bars {
		if err := table.WriteBars(os.Stdout, 48); err != nil {
			fatal(err)
		}
	} else {
		if err := table.Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
	fmt.Println("\npaper reference: RGP+LAS geomean 1.12x over LAS; NStream 1.75x (EP) / 1.74x (RGP+LAS);")
	fmt.Println("DFIFO annotations: integral histogram 0.40, Jacobi 0.42, NStream 0.49; sym. inv. 0.68.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figure1:", err)
	os.Exit(1)
}
