// Command figure1 regenerates the paper's Figure 1: the speedup of DFIFO,
// RGP+LAS and EP over the LAS baseline for the eight benchmarks on the
// simulated Atos bullion S16 (8 sockets x 4 cores), plus the geometric mean.
//
// Each (workload, machine) task graph is built once per run and shared
// across the policy/seed cells via the experiment's TDG cache, so multi-seed
// sweeps pay generator cost once. -apps accepts workload registry specs, so
// the figure can be regenerated over synthetic or imported DAGs too.
//
// The figure grid shards, checkpoints and resumes exactly like cmd/sweep:
// -shard i/n runs a slice into a journal under -out, -resume continues an
// interrupted run, -merge recombines shard journals into the (byte
// identical) figure, -serve/-join distribute the shards over HTTP.
//
// Usage:
//
//	figure1                      # paper scale, 3 seeds (a few minutes)
//	figure1 -scale small -seeds 2
//	figure1 -bars                # ASCII bar chart like the paper's figure
//	figure1 -jsonl cells.jsonl   # stream per-cell results while running
//	figure1 -trace cells.json    # Chrome trace of every grid cell (Perfetto)
//	figure1 -apps "jacobi,forkjoin?depth=8&fanout=3" -scale small
//	figure1 -shard 0/2 -out run/ # half the grid, merge with -merge run/
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"numadag/internal/cliutil"
	"numadag/internal/core"
	"numadag/internal/shard"
)

func main() {
	var (
		scale    = cliutil.ScaleFlag(flag.CommandLine, "paper")
		seeds    = cliutil.SeedsFlag(flag.CommandLine, 3)
		bars     = flag.Bool("bars", false, "render ASCII bars instead of a table")
		csvF     = flag.String("csv", "", "also write the table as CSV to this file")
		outputs  = cliutil.BindOutputs(flag.CommandLine, false)
		wsize    = flag.Int("window", 0, "override window size (0 = default 2048)")
		appsF    = cliutil.AppsFlag(flag.CommandLine, "comma-separated workload specs (default: the eight paper benchmarks)")
		traceOut = cliutil.BindTrace(flag.CommandLine)
		shardSet = cliutil.BindShard(flag.CommandLine)
	)
	flag.Parse()

	sc, err := scale()
	if err != nil {
		fatal(err)
	}
	opt := core.DefaultFigure1Options()
	opt.Scale = sc
	opt.Seeds = *seeds
	if *wsize > 0 {
		opt.Runtime.WindowSize = *wsize
	}
	if apps := appsF(); apps != nil {
		opt.Apps = apps
	}
	traceOut.Enable(false)
	opt.Trace = traceOut.Attacher()

	mode, err := shardSet.Mode()
	if err != nil {
		fatal(err)
	}
	e := core.Figure1Experiment(opt)
	table := core.Figure1Table(opt)
	var sinks []core.Sink
	if mode.FullStream() {
		sinks = append(sinks, table)
		extra, err := outputs.Sinks()
		if err != nil {
			fatal(err)
		}
		sinks = append(sinks, extra...)
	} else if outputs.Any() {
		fmt.Fprintln(os.Stderr, "figure1: note: -jsonl applies to full-stream modes; shard journals land in -out (combine with -merge)")
	}
	err = cliutil.Drive(context.Background(), e, mode, shardSet, sinks...)
	if cerr := outputs.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if errors.Is(err, shard.ErrInterrupted) {
		fmt.Fprintf(os.Stderr, "figure1: interrupted after -maxcells=%d fresh cells; continue with -resume\n", shardSet.MaxCells)
		return
	}
	if err != nil {
		fatal(err)
	}
	if err := traceOut.Write(); err != nil {
		fatal(err)
	}
	if !mode.FullStream() {
		return
	}
	if *csvF != "" {
		f, err := os.Create(*csvF)
		if err != nil {
			fatal(err)
		}
		if err := table.Table().WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *bars {
		if err := table.Table().WriteBars(os.Stdout, 48); err != nil {
			fatal(err)
		}
	} else {
		if err := table.Table().Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
	fmt.Println("\npaper reference: RGP+LAS geomean 1.12x over LAS; NStream 1.75x (EP) / 1.74x (RGP+LAS);")
	fmt.Println("DFIFO annotations: integral histogram 0.40, Jacobi 0.42, NStream 0.49; sym. inv. 0.68.")
}

func fatal(err error) {
	cliutil.Fatal("figure1", err)
}
